"""Unit tests of the context-bound operator API (repro.arithmetic.farray)."""

import numpy as np
import pytest

from repro.arithmetic import (
    BoundNamespace,
    ContextSpec,
    FArray,
    FScalar,
    PrecisionLeakError,
    get_context,
    get_format,
    precision,
)
from tests.conftest import random_symmetric_csr


class TestFScalarStaysScalar:
    """FScalar results must never round-trip through ndarrays."""

    @pytest.mark.parametrize("fmt", ["float64", "bfloat16", "posit16", "posit32", "takum64", "reference"])
    def test_binary_ops_return_work_dtype_scalars(self, fmt):
        ctx = get_context(fmt)
        a = ctx.scalar(1.25)
        b = ctx.scalar(0.75)
        for result in (a + b, a - b, a * b, a / b, -a, abs(a), a.sqrt(), a.hypot(b)):
            assert isinstance(result, FScalar), type(result)
            assert not isinstance(result.value, np.ndarray), (
                f"{fmt}: FScalar payload became an ndarray"
            )
            assert isinstance(result.value, ctx.dtype)

    def test_scalar_ops_match_explicit_context_bitwise(self):
        ctx = get_context("posit16")
        rng = np.random.default_rng(0)
        for _ in range(50):
            x, y = rng.standard_normal(2)
            a = ctx.scalar(x)
            b = ctx.scalar(y)
            assert float(a + b) == float(ctx.add(a.value, b.value))
            assert float(a - b) == float(ctx.sub(a.value, b.value))
            assert float(a * b) == float(ctx.mul(a.value, b.value))
            assert float(a / b) == float(ctx.div(a.value, b.value))
            assert float(abs(a).sqrt()) == float(ctx.sqrt(ctx.abs(a.value)))

    def test_mixed_operand_forms(self):
        ctx = get_context("bfloat16")
        a = ctx.scalar(3.0)
        assert float(2.0 + a) == float(ctx.add(2.0, a.value))
        assert float(2.0 / a) == float(ctx.div(2.0, a.value))
        assert float(a * 2) == float(ctx.mul(a.value, 2))
        # numpy scalar on the left routes through the ufunc shim, still rounded
        out = np.float64(2.0) / a
        assert isinstance(out, FScalar)
        assert float(out) == float(ctx.div(np.float64(2.0), a.value))

    def test_square_via_pow(self):
        ctx = get_context("posit16")
        a = ctx.scalar(1.3)
        assert float(a**2) == float(ctx.mul(a.value, a.value))

    def test_comparisons_are_plain_bools(self):
        ctx = get_context("takum16")
        a = ctx.scalar(1.0)
        b = ctx.scalar(2.0)
        assert (a < b) is True
        assert (a >= b) is False
        assert (a == 1.0) is True
        assert (a != b) is True

    def test_copysign_and_isfinite(self):
        ctx = get_context("posit16")
        a = ctx.scalar(3.0)
        assert float(a.copysign(-1.0)) == -3.0
        assert a.isfinite()
        assert not get_context("float32").wrap_scalar(np.inf).isfinite()
        # array operand broadcasts to a bound array; mixing contexts raises
        spread = a.copysign(ctx.array([1.0, -2.0]))
        assert isinstance(spread, FArray)
        assert np.array_equal(spread.data, [3.0, -3.0])
        with pytest.raises(PrecisionLeakError):
            a.copysign(get_context("posit8").scalar(-1.0))

    def test_scalar_asarray_reads_out(self):
        s = get_context("posit16").scalar(1.5)
        out = np.asarray(s)
        assert out.ndim == 0 and out.dtype == np.float64 and float(out) == 1.5

    def test_op_counting_flows_through_operators(self):
        ctx = get_context("posit16")
        before = ctx.op_count
        _ = ctx.scalar(1.0) + ctx.scalar(2.0)
        assert ctx.op_count == before + 1  # constructors round, only + tallies

    def test_ufunc_guard_raises_on_unrounded_ops(self):
        a = get_context("posit16").scalar(1.0)
        with pytest.raises(PrecisionLeakError):
            np.exp(a)
        with pytest.raises(PrecisionLeakError):
            np.log(a)


class TestFArray:
    def test_constructors_round_and_wrap(self):
        ctx = get_context("bfloat16")
        x = ctx.array([1.0, 1.0 / 3.0])
        assert isinstance(x, FArray)
        # entries were rounded into the format
        fmt = get_format("bfloat16")
        assert np.array_equal(x.data, fmt.round_array(np.array([1.0, 1.0 / 3.0])))
        # wrap trusts the caller: no rounding pass
        y = ctx.wrap(np.array([1.0, 2.0]))
        assert np.array_equal(y.data, [1.0, 2.0])

    def test_elementwise_operators_match_context(self, rng):
        ctx = get_context("posit16")
        a = ctx.array(rng.standard_normal(32))
        b = ctx.array(rng.standard_normal(32))
        assert np.array_equal((a + b).data, ctx.add(a.data, b.data))
        assert np.array_equal((a - b).data, ctx.sub(a.data, b.data))
        assert np.array_equal((a * b).data, ctx.mul(a.data, b.data))
        assert np.array_equal((a / b).data, ctx.div(a.data, b.data))
        assert np.array_equal((-a).data, ctx.neg(a.data))
        assert np.array_equal(abs(a).data, ctx.abs(a.data))
        assert np.array_equal(abs(a).sqrt().data, ctx.sqrt(ctx.abs(a.data)))

    def test_matmul_dispatch(self, rng):
        ctx = get_context("takum16")
        M = ctx.array(rng.standard_normal((6, 4)))
        N = ctx.array(rng.standard_normal((4, 3)))
        x = ctx.array(rng.standard_normal(4))
        y = ctx.array(rng.standard_normal(6))
        assert np.array_equal((M @ x).data, ctx.gemv(M.data, x.data))
        assert np.array_equal((y @ M).data, ctx.gemv_t(M.data, y.data))
        assert np.array_equal((M @ N).data, ctx.gemm(M.data, N.data))
        d = x.dot(x)
        assert isinstance(d, FScalar)
        assert float(d) == float(ctx.dot(x.data, x.data))
        e = x @ x
        assert isinstance(e, FScalar)

    def test_csr_matmul_routes_through_rounded_spmv(self, rng):
        ctx = get_context("bfloat16")
        A = random_symmetric_csr(20, density=0.2, seed=1)
        A, _ = ctx.convert_matrix(A)
        x = ctx.array(rng.standard_normal(20))
        out = A @ x
        assert isinstance(out, FArray)
        assert np.array_equal(out.data, ctx.spmv(A, x.data))
        # plain ndarray operand keeps the exact work-precision matvec
        raw = A @ x.data
        assert isinstance(raw, np.ndarray)

    def test_reductions(self, rng):
        ctx = get_context("posit16")
        x = ctx.array(rng.standard_normal(17))
        n = x.norm2()
        assert isinstance(n, FScalar)
        assert float(n) == float(ctx.norm2(x.data))
        s = x.sum()
        assert isinstance(s, FScalar)
        assert float(s) == float(ctx.reduce_sum(x.data))

    def test_indexing_preserves_binding(self, rng):
        ctx = get_context("takum16")
        A = ctx.array(rng.standard_normal((5, 4)))
        assert isinstance(A[0, 0], FScalar)
        assert isinstance(A[1], FArray)
        col = A[:, 2]
        assert isinstance(col, FArray) and col.ctx is ctx
        # slices are views: writes are visible in the parent
        col[0] = ctx.scalar(42.0)
        assert float(A[0, 2]) == 42.0
        A[2, :] = ctx.array(np.ones(4))
        assert np.array_equal(A.data[2], np.ones(4))
        assert isinstance(A.T, FArray) and A.T.shape == (4, 5)

    def test_scalar_array_broadcasting(self, rng):
        ctx = get_context("posit16")
        x = ctx.array(rng.standard_normal(8))
        s = ctx.scalar(0.5)
        assert np.array_equal((s * x).data, ctx.mul(s.value, x.data))
        assert np.array_equal((x * s).data, ctx.mul(x.data, s.value))
        assert np.array_equal((0.5 * x).data, ctx.mul(0.5, x.data))

    def test_guard_raises_on_unrounded_ufuncs(self, rng):
        ctx = get_context("posit16")
        x = ctx.array(rng.standard_normal(4))
        with pytest.raises(PrecisionLeakError):
            np.exp(x)
        with pytest.raises(PrecisionLeakError):
            np.add.reduce(x)
        with pytest.raises(PrecisionLeakError):
            np.sum(x)  # __array_function__ guard
        with pytest.raises(PrecisionLeakError):
            np.add(x, x, out=np.zeros(4))

    def test_numpy_left_operands_stay_rounded(self, rng):
        ctx = get_context("bfloat16")
        x = ctx.array(rng.standard_normal(4))
        out = np.ones(4) + x
        assert isinstance(out, FArray)
        assert np.array_equal(out.data, ctx.add(np.ones(4), x.data))
        out = np.eye(4) @ x
        assert isinstance(out, FArray)
        assert np.array_equal(out.data, ctx.gemv(np.eye(4), x.data))

    def test_exact_queries_allowed(self, rng):
        ctx = get_context("posit16")
        x = ctx.array(rng.standard_normal(4))
        assert np.isfinite(x).all()
        assert x.all_finite()
        assert np.asarray(x) is x.data  # explicit escape hatch

    def test_zero_dim_results_become_fscalars(self):
        ctx = get_context("float64")
        x = ctx.array([1.0, 2.0, 3.0])
        assert isinstance(x.sum(), FScalar)
        assert isinstance(x[1], FScalar)

    def test_mixed_context_operands_raise(self):
        a16 = get_context("posit16")
        a8 = get_context("posit8")
        x = a16.array([1.0, 2.0])
        y = a8.array([1.0, 2.0])
        s = a16.scalar(1.0)
        t = a8.scalar(1.0)
        for bad in (
            lambda: x + y,
            lambda: x @ y,
            lambda: x.dot(y),
            lambda: s * t,
            lambda: s.hypot(t),
            lambda: x.__setitem__(0, t),
        ):
            with pytest.raises(PrecisionLeakError):
                bad()
        # two contexts of the same format are still distinct bindings
        with pytest.raises(PrecisionLeakError):
            _ = x + get_context("posit16").array([1.0, 2.0])
        # scalar-left and ufunc-protocol forms are guarded too
        with pytest.raises(PrecisionLeakError):
            _ = s * y
        with pytest.raises(PrecisionLeakError):
            np.add(x, y)

    def test_ufunc_modifiers_rejected(self, rng):
        ctx = get_context("posit16")
        x = ctx.array([1.0, 2.0])
        with pytest.raises(PrecisionLeakError):
            np.add(x, x, where=np.array([True, False]))
        with pytest.raises(PrecisionLeakError):
            np.add(x, x, out=np.zeros(2))

    def test_bool_mirrors_ndarray_semantics(self):
        ctx = get_context("posit16")
        with pytest.raises(ValueError):
            bool(ctx.array([1.0, 2.0]))
        assert bool(ctx.array([1.0]))
        assert not bool(ctx.array([0.0]))

    def test_asarray_with_dtype_conversion(self):
        ctx = get_context("posit16")
        x = ctx.array([1.0, 2.0])
        out = np.asarray(x, dtype=np.float32)
        assert out.dtype == np.float32
        assert np.array_equal(out, [1.0, 2.0])

    def test_scalar_input_to_array_becomes_fscalar(self):
        ctx = get_context("posit16")
        s = ctx.array(3.5)
        assert isinstance(s, FScalar)
        assert float(s) == 3.5

    def test_scalar_hypot_with_array_operand(self):
        ctx = get_context("posit16")
        s = ctx.scalar(3.0)
        out = s.hypot(ctx.array([4.0, 0.0]))
        assert isinstance(out, FArray)
        assert np.array_equal(out.data, [5.0, 3.0])

    def test_setitem_rounds_unbound_values(self):
        ctx = get_context("posit16")
        x = ctx.array([1.0, 2.0])
        x[0] = 0.3  # not representable in posit16
        assert float(x[0]) == float(ctx.round_scalar(0.3))
        x[:] = np.array([0.3, 0.7])
        assert np.array_equal(x.data, ctx.round(np.array([0.3, 0.7])))
        # bound values skip the rounding pass but stay representable
        x[1] = ctx.scalar(0.25)
        assert float(x[1]) == 0.25

    def test_sum_defaults_to_all_elements(self):
        ctx = get_context("posit16")
        M = ctx.array([[1.0, 2.0], [3.0, 4.0]])
        total = M.sum()
        assert isinstance(total, FScalar)
        assert float(total) == 10.0
        rows = M.sum(axis=-1)
        assert isinstance(rows, FArray)
        assert np.array_equal(rows.data, [3.0, 7.0])


class TestFacade:
    def test_context_spec_builds_context(self):
        spec = ContextSpec(format="posit16", accumulation="sequential", count_ops=False)
        ctx = spec.build()
        assert ctx.name == "posit16"
        assert ctx.accumulation == "sequential"
        assert ctx.count_ops is False
        assert spec.with_format("takum16").format == "takum16"

    def test_get_context_rejects_spec_plus_kwargs(self):
        with pytest.raises(TypeError):
            get_context(ContextSpec(format="posit16"), accumulation="sequential")

    def test_spec_use_tables_false_forces_analytic(self):
        ctx = get_context(ContextSpec(format="posit16", use_tables=False))
        assert ctx.use_tables is False

    def test_partialschur_accepts_spec(self):
        from repro.core import partialschur

        matrix = random_symmetric_csr(12, density=0.3, seed=2)
        spec = ContextSpec(format="float64", accumulation="sequential")
        res = partialschur(matrix, nev=3, tol=1e-8, ctx=spec)
        assert res.format_name == "float64"

    def test_precision_context_manager(self):
        with precision("posit16") as p:
            assert isinstance(p, BoundNamespace)
            x = p.array([3.0, 4.0])
            assert float(x.norm2()) == 5.0
            assert isinstance(p.scalar(1.0), FScalar)
            assert p.zeros((2, 2)).shape == (2, 2)
            assert p.eye(3).data[0, 0] == 1.0
            # attribute delegation to the underlying context
            assert p.machine_epsilon == p.ctx.machine_epsilon

    def test_precision_accepts_spec_and_context(self):
        with precision(ContextSpec(format="takum16")) as p:
            assert p.ctx.name == "takum16"
        ctx = get_context("bfloat16")
        with precision(ctx) as p:
            assert p.ctx is ctx
