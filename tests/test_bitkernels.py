"""Bit-identity proofs for the integer bit-twiddling rounding engine.

The kernels in :mod:`repro.arithmetic.bitkernels` must reproduce the analytic
ground truth (``round_array_analytic`` / ``decode_code`` /
``encode_analytic``) bit for bit:

* **exhaustively** against the lookup tables for every format of <= 16 bits
  (all representable values, every adjacent-code midpoint — the exact
  rounding ties — and their work-precision neighbours);
* by **randomized, boundary and tie sweeps** against the preserved analytic
  kernels for the wide formats (posit32/64, takum32/64, float32/64; the
  64-bit tapered formats run the two-word extended kernel, the cast IEEE
  widths keep the hardware cast);
* through a shared **NaR/NaN/inf/signed-zero battery** for every family.

The sweep generators and comparators live in :mod:`tests._kernel_harness`;
the 64-bit extended-kernel battery is in ``test_bitkernels_64bit.py``.

The ``out=`` plumbing (``round_array(..., out=)`` through the contexts down
to the kernels) is checked for aliasing safety and allocation-free identity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arithmetic import bitkernels as bk
from repro.arithmetic import get_context, get_format, table_for
from repro.arithmetic.base import SCALAR_CUTOFF
from tests._kernel_harness import (
    assert_rounded_equal,
    edge_battery,
    midpoint_sweep,
    random_sweep,
    solver_regime_sweep,
)

# these are identity proofs *of* the engine: with the engine globally
# disabled (the REPRO_DISABLE_BITKERNELS=1 analytic-only CI job) there is
# nothing to difference against
pytestmark = pytest.mark.skipif(
    not bk.bitkernels_enabled(),
    reason="bit kernels globally disabled (REPRO_DISABLE_BITKERNELS)",
)

#: formats with a one-word (float64) integer kernel, by family
KERNEL_FORMATS = [
    "posit8",
    "posit16",
    "posit32",
    "takum8",
    "takum16",
    "takum32",
    "float16",
    "bfloat16",
    "E5M2",
    "E4M3",
]
#: table-eligible formats (<= 16 bits): exhaustive identity required
TABLE_FORMATS = ["posit8", "posit16", "takum8", "takum16", "float16", "bfloat16", "E5M2", "E4M3"]
#: wide formats: sweep-based identity of the dispatch (the 64-bit tapered
#: formats round through the two-word extended kernel, the cast IEEE widths
#: through the hardware cast)
WIDE_FORMATS = ["posit32", "takum32", "posit64", "takum64", "float32", "float64"]

_U = np.uint64


def exhaustive_table_inputs(fmt) -> np.ndarray:
    """Every representable value, every adjacent midpoint (the exact ties)
    and their one-ulp float64 neighbours, for a <= 16-bit format."""
    table = table_for(fmt)
    assert table is not None, fmt.name
    mags = table.magnitudes
    mids = (mags[:-1] + mags[1:]) * 0.5  # exact: adjacent codes share bits
    around = np.concatenate(
        [
            mags,
            mids,
            np.nextafter(mids, np.inf),
            np.nextafter(mids, -np.inf),
            np.nextafter(mags, np.inf),
            np.nextafter(mags, -np.inf),
            [float(mags[-1]) * 2.0, float(mags[-1]) * 1e10],
        ]
    )
    return np.concatenate([around, -around, edge_battery()])


# --------------------------------------------------------------------- #
# rounding identity
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", TABLE_FORMATS)
def test_round_exhaustive_vs_tables(name):
    """Kernel rounding == table rounding == analytic, over every
    representable value and every exact tie of the format."""
    fmt = get_format(name)
    kern = fmt.bitkernel()
    assert kern is not None
    values = exhaustive_table_inputs(fmt)
    analytic = fmt.round_array_analytic(values)
    assert_rounded_equal(kern.round(values), analytic, f"{name} kernel-vs-analytic")
    assert_rounded_equal(
        table_for(fmt).round_values(values), analytic, f"{name} table-vs-analytic"
    )


@pytest.mark.parametrize("name", KERNEL_FORMATS)
@pytest.mark.parametrize("sweep", ["whole_range", "solver_regime"])
def test_round_random_sweeps(name, sweep):
    fmt = get_format(name)
    values = (
        random_sweep(fmt, 150_000, seed=5)
        if sweep == "whole_range"
        else solver_regime_sweep(fmt, 80_000, seed=6)
    )
    assert_rounded_equal(
        fmt.bitkernel().round(values),
        fmt.round_array_analytic(values),
        f"{name} {sweep}",
    )


@pytest.mark.parametrize("name", KERNEL_FORMATS)
def test_round_tie_sweep(name):
    """Exact midpoints of adjacent representable codes (the rounding ties)
    across the small, middle and large ends of the code range."""
    fmt = get_format(name)
    values = midpoint_sweep(fmt)
    assert_rounded_equal(
        fmt.bitkernel().round(values),
        fmt.round_array_analytic(values),
        f"{name} ties",
    )


@pytest.mark.parametrize("name", KERNEL_FORMATS)
def test_round_edge_battery(name):
    fmt = get_format(name)
    values = edge_battery()
    assert_rounded_equal(
        fmt.bitkernel().round(values), fmt.round_array_analytic(values), name
    )


@pytest.mark.parametrize("name", WIDE_FORMATS)
def test_wide_dispatch_matches_analytic(name):
    """``round_array`` (bit kernel for the 32-bit tapered formats, hardware
    cast / longdouble fallback elsewhere) stays bit-identical to the
    preserved analytic kernels across random/boundary/tie sweeps."""
    fmt = get_format(name)
    rng = np.random.default_rng(17)
    values = (
        rng.standard_normal(5_000) * np.exp(rng.uniform(-320, 320, 5_000))
    ).astype(fmt.work_dtype)
    battery = edge_battery(fmt.work_dtype)
    for sweep in (values, battery):
        got = fmt.round_array(sweep)
        expected = fmt.round_array_analytic(sweep)
        nan_g, nan_e = np.isnan(got), np.isnan(expected)
        assert np.array_equal(nan_g, nan_e), name
        assert np.array_equal(got[~nan_g], expected[~nan_e]), name


def test_64bit_formats_get_extended_kernel():
    """posit64/takum64 run in extended precision, served by the two-word
    extended kernels on 80-bit-longdouble hosts (the deep battery lives in
    ``test_bitkernels_64bit.py``)."""
    for name in ("posit64", "takum64"):
        fmt = get_format(name)
        kern = fmt.bitkernel()
        if not bk.extended_layout_supported():
            pytest.skip("host longdouble is not the two-word extended layout")
        assert kern is not None, name
        assert not kern.supports_codec, name


def test_cast_ieee_formats_have_no_kernel():
    """float32/float64 round via one hardware cast; no kernel can beat it."""
    for name in ("float32", "float64"):
        assert get_format(name).bitkernel() is None, name


# --------------------------------------------------------------------- #
# decode / encode identity
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", TABLE_FORMATS)
def test_decode_exhaustive(name):
    """Kernel decode == scalar ``decode_code`` for every code (this is the
    path the lookup-table engine builds its decode LUT through)."""
    fmt = get_format(name)
    codes = np.arange(1 << fmt.bits, dtype=np.uint64)
    expected = np.asarray([fmt.decode_code(int(c)) for c in codes], dtype=np.float64)
    assert_rounded_equal(fmt.bitkernel().decode(codes), expected, name)


@pytest.mark.parametrize("name", ["posit32", "takum32"])
def test_decode_sampled_32bit(name):
    fmt = get_format(name)
    rng = np.random.default_rng(23)
    codes = np.unique(
        np.concatenate(
            [
                rng.integers(0, 1 << 32, 30_000, dtype=np.uint64),
                np.arange(0, 4_096, dtype=np.uint64),  # tiny magnitudes
                (1 << 32) - 1 - np.arange(0, 4_096, dtype=np.uint64),
                (1 << 31) + np.arange(-2_048, 2_048, dtype=np.int64).astype(np.uint64),
            ]
        )
    )
    expected = np.asarray([fmt.decode_code(int(c)) for c in codes], dtype=np.float64)
    assert_rounded_equal(fmt.bitkernel().decode(codes), expected, name)


@pytest.mark.parametrize("name", KERNEL_FORMATS)
def test_encode_matches_analytic(name):
    fmt = get_format(name)
    values = fmt.round_array_analytic(random_sweep(fmt, 40_000, seed=5))
    expected = fmt.encode_analytic(values)
    assert np.array_equal(fmt.bitkernel().encode(values), expected), name
    # the format-level dispatch must agree as well (table- or kernel-served)
    assert np.array_equal(fmt.encode(values), expected), name


@pytest.mark.parametrize("name", KERNEL_FORMATS)
def test_encode_decode_roundtrip(name):
    fmt = get_format(name)
    kern = fmt.bitkernel()
    values = fmt.round_array_analytic(solver_regime_sweep(fmt, 10_000))
    if name == "E4M3":
        # E4M3 has no signed-zero code: -0.0 canonicalises to +0.0 on encode
        values = np.where(values == 0.0, 0.0, values)
    codes = kern.encode(values)
    assert_rounded_equal(kern.decode(codes), values, name)


# --------------------------------------------------------------------- #
# out= plumbing
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", ["posit32", "takum32", "posit16", "bfloat16", "E4M3", "posit64"])
def test_round_array_out(name):
    """``round_array(values, out=)`` writes into ``out`` (including when it
    aliases the input) and matches the allocating form bit for bit."""
    fmt = get_format(name)
    rng = np.random.default_rng(31)
    values = (rng.standard_normal(512) * np.exp(rng.uniform(-20, 20, 512))).astype(
        fmt.work_dtype
    )
    expected = fmt.round_array(values.copy())
    out = np.empty_like(values)
    res = fmt.round_array(values, out=out)
    assert res is out
    assert np.array_equal(out, expected, equal_nan=True), name
    aliased = values.copy()
    res = fmt.round_array(aliased, out=aliased)
    assert res is aliased
    assert np.array_equal(aliased, expected, equal_nan=True), name


@pytest.mark.parametrize("name", ["posit32", "posit16", "E4M3", "float32", "reference"])
def test_context_ops_round_in_place(name):
    """The contexts' elementwise ops honour ``out=`` and produce the same
    rounded values as the allocating form."""
    ctx = get_context(name)
    rng = np.random.default_rng(37)
    a = ctx.round(rng.standard_normal(64))
    b = ctx.round(rng.standard_normal(64) + 1.5)
    expected = ctx.add(a, b)
    buf = np.empty_like(np.asarray(expected))
    got = ctx.add(a, b, out=buf)
    assert got is buf
    assert np.array_equal(np.asarray(got), np.asarray(expected), equal_nan=True)
    # aliasing an operand is the in-place accumulation path
    acc = np.array(a, copy=True)
    got = ctx.add(acc, b, out=acc)
    assert got is acc
    assert np.array_equal(acc, np.asarray(expected), equal_nan=True)


@pytest.mark.parametrize("name", ["posit32", "posit16", "E4M3"])
def test_out_supports_noncontiguous_views(name):
    """Updating a column view in place must not write into a ravel() copy
    (the FArray ``V[:, j] += w`` pattern)."""
    ctx = get_context(name)
    rng = np.random.default_rng(47)
    for n in (4, 64):  # scalar-loop path and vector-kernel path
        M = np.asarray(ctx.round(rng.standard_normal((n, 3))))
        col = M[:, 1]  # non-contiguous view
        w = np.asarray(ctx.round(rng.standard_normal(n)))
        expected = np.asarray(ctx.add(col.copy(), w))
        got = ctx.add(col, w, out=col)
        assert got is col
        assert np.array_equal(M[:, 1], expected, equal_nan=True), (name, n)


def test_farray_inplace_operators_match_out_of_place():
    ctx = get_context("posit16")
    rng = np.random.default_rng(41)
    base = rng.standard_normal(96)
    other = rng.standard_normal(96) * 3.0
    for op in ("add", "sub", "mul", "truediv"):
        x = ctx.array(base)
        y = ctx.array(other)
        expected = {
            "add": x + y,
            "sub": x - y,
            "mul": x * y,
            "truediv": x / y,
        }[op]
        z = ctx.array(base)
        buf = z.data
        if op == "add":
            z += y
        elif op == "sub":
            z -= y
        elif op == "mul":
            z *= y
        else:
            z /= y
        assert z.data is buf, op  # genuinely in place, no reallocation
        assert np.array_equal(z.data, expected.data, equal_nan=True), op


def test_farray_inplace_on_zero_dim_buffer():
    """Regression: the contexts' all-scalar branch ignores ``out=`` for a
    0-d buffer, so ``+=`` used to silently drop the update."""
    ctx = get_context("posit16")
    for value, operand, op in ((2.0, 1.0, "add"), (2.0, 3.0, "mul")):
        # ctx.array routes 0-d input to FScalar; ctx.wrap keeps the buffer
        a = ctx.wrap(np.asarray(value, dtype=ctx.dtype))
        assert a.data.ndim == 0
        buf = a.data
        if op == "add":
            a += operand
            expected = ctx.add(value, operand)
        else:
            a *= operand
            expected = ctx.mul(value, operand)
        assert a.data is buf
        assert float(a.data) == float(expected)


# --------------------------------------------------------------------- #
# engine plumbing
# --------------------------------------------------------------------- #
def test_disable_switch_falls_back_to_analytic():
    fmt = get_format("posit32")
    values = np.asarray([0.3, -1.7, 1e30, -1e-30])
    previous = bk.set_enabled(False)
    try:
        assert fmt.bitkernel() is None
        assert np.array_equal(fmt.round_array(values), fmt.round_array_analytic(values))
    finally:
        bk.set_enabled(previous)
    assert fmt.bitkernel() is not None


def test_use_tables_false_bypasses_bitkernels():
    """The verification context must run the pure analytic kernels even for
    formats whose default dispatch is the bit kernel."""
    ctx = get_context("posit32", use_tables=False)
    values = np.asarray([0.3, -1.7, 64.25, 1e-40])
    assert np.array_equal(
        ctx.round(values), get_format("posit32").round_array_analytic(values)
    )


def test_table_construction_decodes_via_bitkernels():
    """The lookup tables are built from the vectorised kernel decode; their
    decode LUT must equal the scalar decoder exactly (NaN-aware)."""
    fmt = get_format("takum16")
    table = table_for(fmt)
    sample = np.concatenate(
        [np.arange(0, 2_000, dtype=np.uint64), np.arange(30_000, 34_000, dtype=np.uint64)]
    )
    expected = np.asarray([fmt.decode_code(int(c)) for c in sample])
    assert_rounded_equal(table.decode_values(sample), expected, "takum16 lut")


def test_scalar_cutoff_path_unchanged():
    """Tiny arrays still take the scalar loop, not the kernel (dispatch)."""
    fmt = get_format("posit32")
    rng = np.random.default_rng(43)
    values = rng.standard_normal(SCALAR_CUTOFF)
    assert np.array_equal(fmt.round_array(values), fmt.round_array_analytic(values))


@pytest.mark.extended_longdouble
def test_longdouble_capability_flag_consistent():
    from repro.arithmetic import LONGDOUBLE_EXTENDED

    assert LONGDOUBLE_EXTENDED
    assert np.finfo(np.longdouble).nmant > 52
