"""Tests of the utility helpers (parallel map, text rendering)."""

import math

import pytest

from repro.utils import ParallelTaskError, ascii_plot, format_table, parallel_map


def _square(x):
    return x * x


def _square_or_boom(x):
    if x == 3:
        raise ValueError("boom at three")
    return x * x


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_two_workers(self):
        assert parallel_map(_square, list(range(8)), workers=2) == [x * x for x in range(8)]

    def test_all_cpus(self):
        assert parallel_map(_square, [3, 4], workers=0) == [9, 16]

    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_runs_serially(self):
        assert parallel_map(_square, [5], workers=8) == [25]


class TestParallelMapExceptionCapture:
    """Regression: a crashing task used to abort the whole pool and discard
    every completed result; now it is captured per task."""

    def test_pool_crash_does_not_discard_siblings(self):
        outcomes = parallel_map(_square_or_boom, list(range(8)), workers=2, capture=True)
        assert [o.index for o in outcomes] == list(range(8))  # input order restored
        failed = [o for o in outcomes if not o.ok]
        assert len(failed) == 1 and failed[0].index == 3
        assert "ValueError" in failed[0].error and "boom at three" in failed[0].error
        assert [o.value for o in outcomes if o.ok] == [x * x for x in range(8) if x != 3]

    def test_serial_capture(self):
        outcomes = parallel_map(_square_or_boom, list(range(5)), workers=1, capture=True)
        assert [o.ok for o in outcomes] == [True, True, True, False, True]

    def test_fail_fast_raises_with_traceback_pool(self):
        with pytest.raises(ParallelTaskError, match="boom at three"):
            parallel_map(_square_or_boom, list(range(8)), workers=2)

    def test_fail_fast_raises_with_traceback_serial(self):
        with pytest.raises(ParallelTaskError, match="boom at three"):
            parallel_map(_square_or_boom, list(range(8)), workers=1)

    def test_on_result_streams_every_outcome(self):
        seen = []
        parallel_map(
            _square_or_boom,
            list(range(6)),
            workers=2,
            capture=True,
            on_result=seen.append,
        )
        assert sorted(o.index for o in seen) == list(range(6))

    def test_on_result_sees_completed_work_before_fail_fast_raise(self):
        seen = []
        with pytest.raises(ParallelTaskError):
            parallel_map(_square_or_boom, list(range(8)), workers=2, on_result=seen.append)
        # every task's outcome streamed out before the error was raised
        assert sorted(o.index for o in seen) == list(range(8))


class TestAsciiPlot:
    def test_contains_legend_and_axes(self):
        series = {
            "takum16": [(10.0, -3.0), (50.0, -2.5), (100.0, -2.0)],
            "bfloat16": [(10.0, -2.0), (50.0, -1.5), (100.0, -1.0)],
        }
        text = ascii_plot(series)
        assert "takum16" in text and "bfloat16" in text
        assert "percentile" in text
        assert "log10" in text

    def test_empty_series(self):
        assert "no finite data points" in ascii_plot({"a": []})

    def test_non_finite_points_skipped(self):
        text = ascii_plot({"a": [(10.0, -1.0), (20.0, math.inf), (30.0, -2.0)]})
        assert "a" in text

    def test_degenerate_single_point(self):
        text = ascii_plot({"a": [(50.0, -1.0)]})
        assert "a" in text


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "value"], [["x", 1], ["longer", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
