"""Tests of the utility helpers (parallel map, text rendering)."""

import math
import os

import numpy as np
import pytest

from repro.utils import ascii_plot, format_table, parallel_map


def _square(x):
    return x * x


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_parallel_two_workers(self):
        assert parallel_map(_square, list(range(8)), workers=2) == [x * x for x in range(8)]

    def test_all_cpus(self):
        assert parallel_map(_square, [3, 4], workers=0) == [9, 16]

    def test_empty(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_single_item_runs_serially(self):
        assert parallel_map(_square, [5], workers=8) == [25]


class TestAsciiPlot:
    def test_contains_legend_and_axes(self):
        series = {
            "takum16": [(10.0, -3.0), (50.0, -2.5), (100.0, -2.0)],
            "bfloat16": [(10.0, -2.0), (50.0, -1.5), (100.0, -1.0)],
        }
        text = ascii_plot(series)
        assert "takum16" in text and "bfloat16" in text
        assert "percentile" in text
        assert "log10" in text

    def test_empty_series(self):
        assert "no finite data points" in ascii_plot({"a": []})

    def test_non_finite_points_skipped(self):
        text = ascii_plot({"a": [(10.0, -1.0), (20.0, math.inf), (30.0, -2.0)]})
        assert "a" in text

    def test_degenerate_single_point(self):
        text = ascii_plot({"a": [(50.0, -1.0)]})
        assert "a" in text


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["name", "value"], [["x", 1], ["longer", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text
