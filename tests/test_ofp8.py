"""Tests of the OFP8 formats E4M3 and E5M2."""

import math

import numpy as np
import pytest

from repro.arithmetic import E4M3, E5M2
from repro.arithmetic.ofp8 import OFP8E4M3


class TestE4M3:
    def test_max_value_is_448(self):
        assert E4M3.max_value == 448.0

    def test_min_positive_subnormal(self):
        assert E4M3.min_positive == 2.0**-9

    def test_has_no_infinity(self):
        assert not E4M3.has_infinity
        out = E4M3.round_array(np.array([np.inf, -np.inf]))
        assert np.isnan(out).all()

    def test_nan_code(self):
        assert math.isnan(E4M3.decode_code(0x7F))
        assert math.isnan(E4M3.decode_code(0xFF))

    def test_top_exponent_still_encodes_normals(self):
        # S=0, exponent=1111, mantissa=110 -> 448
        assert E4M3.decode_code(0x7E) == 448.0
        # S=0, exponent=1111, mantissa=000 -> 256
        assert E4M3.decode_code(0x78) == 256.0

    def test_known_values(self):
        assert E4M3.decode_code(0x38) == 1.0
        assert E4M3.decode_code(0xB8) == -1.0
        assert E4M3.round_scalar(1.0) == 1.0
        assert E4M3.round_scalar(1.06) == 1.0
        assert E4M3.round_scalar(1.07) == 1.125

    def test_overflow_to_nan_by_default(self):
        assert E4M3.round_scalar(450.0) == 448.0
        assert math.isnan(E4M3.round_scalar(465.0))
        assert math.isnan(E4M3.round_scalar(1e6))

    def test_overflow_threshold_boundary(self):
        # 464 is the tie between 448 and the (non-existent) 480: stays finite
        assert E4M3.round_scalar(464.0) == 448.0
        assert math.isnan(E4M3.round_scalar(464.0001))

    def test_saturating_variant(self):
        sat = OFP8E4M3(saturate=True)
        assert sat.round_scalar(1e6) == 448.0
        assert sat.round_scalar(-1e6) == -448.0
        assert math.isnan(sat.round_scalar(float("nan")))

    def test_negative_symmetry(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0.001, 400, 100)
        assert np.array_equal(E4M3.round_array(-x), -E4M3.round_array(x))

    def test_number_of_finite_values(self):
        finite = [
            E4M3.decode_code(c) for c in range(256) if not math.isnan(E4M3.decode_code(c))
        ]
        # 256 codes minus two NaNs = 254 finite values (including +0 and -0)
        assert len(finite) == 254

    def test_encode_roundtrip(self):
        values = np.array([0.0, 1.0, -1.0, 448.0, -448.0, 2.0**-9, 0.0625, 13.0])
        rounded = E4M3.round_array(values)
        back = E4M3.decode(E4M3.encode(rounded))
        assert np.array_equal(rounded, back)

    def test_subnormals(self):
        assert E4M3.decode_code(0x01) == 2.0**-9
        assert E4M3.decode_code(0x07) == 7 * 2.0**-9
        assert E4M3.round_scalar(2.5e-3) == pytest.approx(2.0**-9)
        assert E4M3.round_scalar(3.5e-3) == pytest.approx(2 * 2.0**-9)


class TestE5M2:
    def test_max_value(self):
        assert E5M2.max_value == 57344.0

    def test_has_infinity(self):
        assert E5M2.has_infinity
        assert E5M2.round_scalar(1e9) == np.inf

    def test_min_positive(self):
        assert E5M2.min_positive == 2.0**-16

    def test_epsilon(self):
        assert E5M2.machine_epsilon == 0.25

    def test_known_values(self):
        assert E5M2.round_scalar(1.0) == 1.0
        assert E5M2.round_scalar(1.1) == 1.0
        assert E5M2.round_scalar(1.2) == 1.25
        assert E5M2.round_scalar(60000.0) == 57344.0

    def test_wider_range_than_e4m3_but_less_precision(self):
        assert E5M2.max_value > E4M3.max_value
        assert E5M2.machine_epsilon > E4M3.machine_epsilon

    def test_encode_decode_roundtrip(self):
        values = np.array([0.0, 1.0, -1.5, 57344.0, 2.0**-16, -2.0**-14])
        rounded = E5M2.round_array(values)
        back = E5M2.decode(E5M2.encode(rounded))
        assert np.array_equal(rounded, back)
