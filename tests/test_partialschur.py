"""Tests of the Krylov-Schur ``partialschur`` driver."""

import numpy as np
import pytest
from scipy.sparse.linalg import eigsh

from repro.arithmetic import get_context
from repro.core import partialschur
from repro.core.krylov_schur import default_maxdim, effective_tolerance
from repro.sparse import CSRMatrix
from tests.conftest import random_symmetric_csr


class TestAgainstScipy:
    @pytest.mark.parametrize("n,nev", [(30, 5), (80, 10), (150, 8)])
    def test_largest_magnitude_eigenvalues(self, n, nev):
        A = random_symmetric_csr(n, density=0.08, seed=n)
        result = partialschur(A, nev=nev, which="LM", tol=1e-10, restarts=300)
        assert result.converged
        ref = eigsh(A.toscipy(), k=nev, which="LM", return_eigenvectors=False)
        assert np.allclose(
            np.sort(result.eigenvalues_float64()), np.sort(ref), atol=1e-8
        )

    def test_eigenvectors_have_small_residual(self, medium_symmetric_matrix):
        A = medium_symmetric_matrix
        result = partialschur(A, nev=6, tol=1e-10, restarts=300)
        assert result.converged
        S = A.toscipy()
        lam = result.eigenvalues_float64()
        X = result.eigenvectors_float64()
        for i in range(6):
            residual = np.linalg.norm(S @ X[:, i] - lam[i] * X[:, i])
            assert residual < 1e-7

    def test_eigenvector_orthonormality(self, small_symmetric_matrix):
        result = partialschur(small_symmetric_matrix, nev=8, tol=1e-10, restarts=200)
        X = result.eigenvectors_float64()
        assert np.allclose(X.T @ X, np.eye(8), atol=1e-8)

    def test_smallest_magnitude(self):
        diag = np.arange(1.0, 21.0)
        A = CSRMatrix.from_dense(np.diag(diag))
        result = partialschur(A, nev=3, which="SM", tol=1e-12, restarts=200)
        assert np.allclose(np.sort(result.eigenvalues_float64()), [1.0, 2.0, 3.0], atol=1e-9)

    def test_largest_algebraic(self):
        diag = np.concatenate([np.arange(-10.0, 0.0), np.arange(1.0, 6.0)])
        A = CSRMatrix.from_dense(np.diag(diag))
        result = partialschur(A, nev=2, which="LR", tol=1e-12, restarts=200)
        assert np.allclose(np.sort(result.eigenvalues_float64()), [4.0, 5.0], atol=1e-9)


class TestSpecialCases:
    def test_matrix_smaller_than_nev(self):
        A = CSRMatrix.from_dense(np.diag([3.0, 1.0, 2.0]))
        result = partialschur(A, nev=10, tol=1e-12)
        assert result.nev == 3
        assert np.allclose(np.sort(result.eigenvalues_float64()), [1.0, 2.0, 3.0])

    def test_diagonal_matrix_with_degenerate_spectrum(self):
        diag = np.array([2.0] * 10 + [1.0] * 10 + [5.0] * 5)
        A = CSRMatrix.from_dense(np.diag(diag))
        result = partialschur(A, nev=6, tol=1e-10, restarts=200)
        lam = np.sort(result.eigenvalues_float64())[::-1]
        assert lam[0] == pytest.approx(5.0, abs=1e-8)

    def test_identity_matrix(self):
        A = CSRMatrix.identity(12)
        result = partialschur(A, nev=4, tol=1e-12)
        assert np.allclose(result.eigenvalues_float64(), 1.0)

    def test_rejects_rectangular(self):
        from repro.sparse import COOMatrix

        A = COOMatrix([0], [1], [1.0], (2, 3)).tocsr()
        with pytest.raises(ValueError):
            partialschur(A, nev=1)

    def test_rejects_bad_nev(self, small_symmetric_matrix):
        with pytest.raises(ValueError):
            partialschur(small_symmetric_matrix, nev=0)

    def test_deterministic_with_seed(self, small_symmetric_matrix):
        r1 = partialschur(small_symmetric_matrix, nev=5, tol=1e-10, seed=3)
        r2 = partialschur(small_symmetric_matrix, nev=5, tol=1e-10, seed=3)
        assert np.array_equal(r1.eigenvalues_float64(), r2.eigenvalues_float64())
        assert r1.matvecs == r2.matvecs

    def test_explicit_starting_vector(self, small_symmetric_matrix):
        n = small_symmetric_matrix.shape[0]
        result = partialschur(small_symmetric_matrix, nev=5, tol=1e-10, v0=np.ones(n))
        assert result.converged


class TestDiagnostics:
    def test_result_metadata(self, small_symmetric_matrix):
        result = partialschur(
            small_symmetric_matrix, nev=5, tol=1e-10, ctx="float64", history=True
        )
        assert result.format_name == "float64"
        assert result.which == "LM"
        assert result.matvecs > 0
        assert result.history is not None and len(result.history) >= 1
        assert "PartialSchurResult" in repr(result)

    def test_nonconvergence_reported(self, medium_symmetric_matrix):
        result = partialschur(
            medium_symmetric_matrix, nev=10, tol=1e-14, restarts=1, eps_floor=False
        )
        assert not result.converged
        assert result.reason == "maxiter"

    def test_residuals_below_tolerance_when_converged(self, small_symmetric_matrix):
        tol = 1e-9
        result = partialschur(small_symmetric_matrix, nev=5, tol=tol, restarts=300)
        assert result.converged
        lam = np.abs(result.eigenvalues_float64())
        assert np.all(result.residuals <= tol * np.maximum(lam, 1e-300) + 1e-25)

    def test_default_maxdim(self):
        assert default_maxdim(10, 1000) == 21
        assert default_maxdim(3, 1000) == 20
        assert default_maxdim(10, 15) == 15

    def test_effective_tolerance_floor(self):
        ctx16 = get_context("bfloat16")
        assert effective_tolerance(1e-4, ctx16) == pytest.approx(
            ctx16.machine_epsilon ** (2 / 3)
        )
        assert effective_tolerance(1e-4, ctx16, eps_floor=False) == 1e-4
        ctx64 = get_context("float64")
        assert effective_tolerance(1e-4, ctx64) == 1e-4


class TestLowPrecision:
    def test_emulated_formats_run(self, small_symmetric_matrix):
        for name, tol in (("bfloat16", 1e-4), ("takum16", 1e-4), ("posit16", 1e-4)):
            result = partialschur(
                small_symmetric_matrix, nev=6, tol=tol, ctx=name, restarts=15
            )
            assert result.format_name == name
            if result.converged:
                ref = eigsh(
                    small_symmetric_matrix.toscipy(), k=6, which="LM", return_eigenvectors=False
                )
                rel = np.linalg.norm(
                    np.sort(result.eigenvalues_float64()) - np.sort(ref)
                ) / np.linalg.norm(ref)
                assert rel < 0.2

    def test_8bit_formats_do_not_crash(self, small_symmetric_matrix):
        for name in ("E4M3", "E5M2", "posit8", "takum8"):
            result = partialschur(
                small_symmetric_matrix, nev=4, tol=1e-2, ctx=name, restarts=5
            )
            assert result.reason in ("converged", "maxiter", "breakdown", "invariant")

    def test_reference_context_high_accuracy(self, small_symmetric_matrix):
        result = partialschur(
            small_symmetric_matrix, nev=5, tol=1e-18, ctx="reference", restarts=200
        )
        assert result.converged
        ref = eigsh(
            small_symmetric_matrix.toscipy(), k=5, which="LM", return_eigenvectors=False
        )
        assert np.allclose(np.sort(result.eigenvalues_float64()), np.sort(ref), atol=1e-10)

    def test_laplacian_like_matrix_in_float16(self):
        from repro.datasets import graph_suite

        tm = graph_suite(classes="social", scale=0.001, size_range=(24, 32), seed=5)[0]
        result = partialschur(tm.matrix, nev=6, tol=1e-4, ctx="float16", restarts=20)
        if result.converged:
            assert np.all(np.abs(result.eigenvalues_float64()) <= 2.5)
