"""Tests of posit arithmetic (2022 standard, es = 2)."""

import math

import numpy as np
import pytest

from repro.arithmetic import POSIT8, POSIT16, POSIT32, POSIT64, PositFormat


class TestPositLayout:
    def test_widths_and_ranges(self):
        assert POSIT8.max_value == 2.0**24
        assert POSIT16.max_value == 2.0**56
        assert POSIT32.max_value == 2.0**120
        assert float(POSIT64.max_value) == float(np.ldexp(np.longdouble(1.0), 248))
        assert POSIT8.min_positive == 2.0**-24
        assert POSIT32.min_positive == 2.0**-120

    def test_work_dtype_for_64_bit_is_longdouble(self):
        assert POSIT64.work_dtype == np.longdouble
        assert POSIT32.work_dtype == np.float64

    def test_epsilon_near_one(self):
        # n - 1 - 2 (regime) - 2 (exponent) fraction bits around 1.0
        assert POSIT16.machine_epsilon == 2.0**-11
        assert POSIT32.machine_epsilon == 2.0**-27

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            PositFormat(2)


class TestPositDecode:
    def test_special_codes(self):
        assert POSIT16.decode_code(0) == 0.0
        assert math.isnan(float(POSIT16.decode_code(1 << 15)))

    def test_one_and_minus_one(self):
        # +1 is 0b0100...0
        assert POSIT16.decode_code(0x4000) == 1.0
        # -1 is the two's complement of +1
        assert POSIT16.decode_code(0xC000) == -1.0

    def test_known_posit8_values(self):
        # es=2: code 0b0100_0000 = 1.0, 0b0110_0000 = regime 0, exp 2 -> 4.0? no:
        # bits after sign: 1 1 0 ... regime=1 run of one '1' -> k=0, e=(10)_2=2,
        # wait: 0b0110_0000 -> body 110_0000: regime '1' then terminator '1'?
        # simpler: verify a handful by reconstruction
        assert POSIT8.decode_code(0b01000000) == 1.0
        assert POSIT8.decode_code(0b01000001) == 1.0 + 2.0**-3  # one fraction ulp
        assert POSIT8.decode_code(0b00000001) == 2.0**-24  # minpos
        assert POSIT8.decode_code(0b01111111) == 2.0**24  # maxpos

    def test_monotonic_in_code_for_positive(self):
        for fmt in (POSIT8, POSIT16):
            codes = np.arange(1, 1 << (fmt.bits - 1))
            values = np.array([float(fmt.decode_code(int(c))) for c in codes])
            assert np.all(np.diff(values) > 0)

    def test_negation_is_twos_complement(self):
        for code in [0x4000, 0x5ABC, 0x0001, 0x7FFF, 0x2222]:
            pos = float(POSIT16.decode_code(code))
            neg = float(POSIT16.decode_code((1 << 16) - code))
            assert neg == -pos


class TestPositRounding:
    def test_round_preserves_representable(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(1, 1 << 15, 200)
        values = np.array([float(POSIT16.decode_code(int(c))) for c in codes])
        assert np.array_equal(POSIT16.round_array(values), values)

    def test_round_is_nearest_posit16(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(300) * 10.0 ** rng.integers(-10, 10, 300)
        rounded = POSIT16.round_array(x)
        # exhaustive nearest over the full table
        table = np.array(
            [float(POSIT16.decode_code(c)) for c in range(1, 1 << 15)]
        )
        full = np.concatenate([-table, [0.0], table])
        for xi, ri in zip(x, rounded):
            best = full[np.argmin(np.abs(full - xi))]
            assert abs(ri - xi) <= abs(best - xi) * (1 + 1e-15) + 1e-300

    def test_never_rounds_nonzero_to_zero(self):
        out = POSIT16.round_array(np.array([1e-300, -1e-300]))
        assert out[0] == POSIT16.min_positive
        assert out[1] == -POSIT16.min_positive

    def test_saturates_at_maxpos(self):
        out = POSIT8.round_array(np.array([1e30, -1e30]))
        assert out[0] == POSIT8.max_value
        assert out[1] == -POSIT8.max_value

    def test_nan_maps_to_nar(self):
        assert math.isnan(POSIT16.round_scalar(float("nan")))

    def test_infinity_maps_to_nar(self):
        # division by exact zero in the work precision is NaR in posit terms
        assert math.isnan(POSIT16.round_scalar(float("inf")))

    def test_round_idempotent_wide_formats(self):
        rng = np.random.default_rng(2)
        for fmt in (POSIT32, POSIT64):
            x = (rng.standard_normal(200) * 10.0 ** rng.integers(-30, 30, 200)).astype(
                fmt.work_dtype
            )
            once = fmt.round_array(x)
            twice = fmt.round_array(once)
            assert np.array_equal(once, twice)

    def test_posit32_agrees_with_table_free_region(self):
        # values near 1 have 27 fraction bits
        x = 1.0 + np.arange(10) * 2.0**-27
        assert np.array_equal(POSIT32.round_array(x), x)
        y = 1.0 + 2.0**-29
        assert POSIT32.round_scalar(y) == 1.0

    def test_extreme_region_rounding_posit32(self):
        # near the top of the range the regime crowds out exponent and
        # fraction bits: the only representable values around 2^118 are
        # 2^116 and maxpos = 2^120
        big = 2.0**118 * 1.4
        out = POSIT32.round_scalar(big)
        assert out == 2.0**116
        assert POSIT32.round_scalar(2.0**119.5) == POSIT32.max_value
        assert POSIT32.round_scalar(2.0**150) == POSIT32.max_value

    def test_negative_symmetry(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(100) * 10.0 ** rng.integers(-20, 20, 100)
        for fmt in (POSIT8, POSIT16, POSIT32):
            assert np.array_equal(fmt.round_array(-x), -fmt.round_array(x))


class TestPositEncode:
    @pytest.mark.parametrize("fmt", [POSIT8, POSIT16, POSIT32, POSIT64])
    def test_encode_decode_roundtrip(self, fmt):
        rng = np.random.default_rng(4)
        x = (rng.standard_normal(100) * 10.0 ** rng.integers(-15, 15, 100)).astype(
            fmt.work_dtype
        )
        rounded = fmt.round_array(x)
        back = fmt.decode(fmt.encode(rounded))
        assert np.array_equal(rounded, back)

    def test_encode_specials(self):
        codes = POSIT16.encode(np.array([0.0, float("nan"), 1.0]))
        assert codes[0] == 0
        assert codes[1] == 1 << 15
        assert codes[2] == 0x4000
