"""Explicit-context baseline implementations of the migrated solver kernels.

The solver modules (``repro.core.arnoldi``, ``repro.core.krylov_schur``,
``repro.linalg.tridiagonal``, ``repro.linalg.reflectors``) are written in the
operator form of :mod:`repro.arithmetic.farray`.  This module preserves the
explicit ``ctx.sub(w, ctx.gemv(V, h))`` spelling of the same algorithms —
the pre-migration code, byte for byte where possible — so that
``tests/test_operator_equivalence.py`` can prove the operator API produces
*bit-identical* trajectories: every operator must map onto exactly the same
sequence of rounded context operations.

Do not "modernise" this file: its value is that it does NOT use the
operator API.
"""

from __future__ import annotations

import numpy as np

from repro.core.arnoldi import KrylovDecomposition, _DGKS_ETA
from repro.core.krylov_schur import default_maxdim, effective_tolerance
from repro.core.results import ArnoldiBreakdown, PartialSchurResult
from repro.linalg.ordering import select_order
from repro.linalg.tridiagonal import EigenConvergenceError


# --------------------------------------------------------------------- #
# reflectors (explicit form)
# --------------------------------------------------------------------- #
def householder_vector_explicit(ctx, x):
    x = np.asarray(x, dtype=ctx.dtype)
    n = x.shape[0]
    normx = ctx.norm2(x)
    if not np.isfinite(normx) or float(normx) == 0.0:
        v = np.zeros(n, dtype=ctx.dtype)
        if n:
            v[0] = 1.0
        return v, ctx.dtype(0.0), ctx.dtype(0.0) if float(normx) == 0.0 else normx
    xs = ctx.div(x, normx)
    sign = -1.0 if float(x[0]) < 0 else 1.0
    alpha = ctx.mul(ctx.dtype(-sign), normx)
    v = xs.copy()
    v[0] = ctx.sub(xs[0], ctx.dtype(-sign))
    vnorm2 = ctx.dot(v, v)
    if not np.isfinite(vnorm2) or float(vnorm2) == 0.0:
        v = np.zeros(n, dtype=ctx.dtype)
        if n:
            v[0] = 1.0
        return v, ctx.dtype(0.0), alpha
    beta = ctx.div(ctx.dtype(2.0), vnorm2)
    if not np.isfinite(beta):
        v = np.zeros(n, dtype=ctx.dtype)
        if n:
            v[0] = 1.0
        return v, ctx.dtype(0.0), alpha
    return v, beta, alpha


def apply_reflector_left_explicit(ctx, v, beta, A):
    A = np.asarray(A, dtype=ctx.dtype)
    if float(beta) == 0.0:
        return A.copy()
    w = ctx.gemv_t(A, v)
    update = ctx.mul(ctx.mul(beta, v)[:, np.newaxis], w[np.newaxis, :])
    return ctx.sub(A, update)


def apply_reflector_right_explicit(ctx, A, v, beta):
    A = np.asarray(A, dtype=ctx.dtype)
    if float(beta) == 0.0:
        return A.copy()
    w = ctx.gemv(A, v)
    update = ctx.mul(w[:, np.newaxis], ctx.mul(beta, v)[np.newaxis, :])
    return ctx.sub(A, update)


def givens_rotation_explicit(ctx, a, b):
    a = ctx.dtype(a)
    b = ctx.dtype(b)
    if float(b) == 0.0:
        return ctx.dtype(1.0), ctx.dtype(0.0), a
    if float(a) == 0.0:
        return ctx.dtype(0.0), ctx.dtype(1.0), b
    r = ctx.hypot(a, b)
    if not np.isfinite(r) or float(r) == 0.0:
        return ctx.dtype(1.0), ctx.dtype(0.0), a
    c = ctx.div(a, r)
    s = ctx.div(b, r)
    return c, s, r


# --------------------------------------------------------------------- #
# symmetric eigensolver (explicit form)
# --------------------------------------------------------------------- #
def tridiagonalize_explicit(ctx, A):
    A = np.array(np.asarray(A, dtype=ctx.dtype), copy=True)
    n = A.shape[0]
    Q = np.eye(n, dtype=ctx.dtype)
    for k in range(n - 2):
        x = A[k + 1 :, k]
        v_small, beta, _ = householder_vector_explicit(ctx, x)
        if float(beta) == 0.0:
            continue
        v = np.zeros(n, dtype=ctx.dtype)
        v[k + 1 :] = v_small
        A = apply_reflector_left_explicit(ctx, v, beta, A)
        A = apply_reflector_right_explicit(ctx, A, v, beta)
        Q = apply_reflector_right_explicit(ctx, Q, v, beta)
    d = np.array([A[i, i] for i in range(n)], dtype=ctx.dtype)
    e = np.array([A[i + 1, i] for i in range(n - 1)], dtype=ctx.dtype)
    return d, e, Q


def tridiagonal_eigen_explicit(ctx, d, e, Z=None, max_sweeps: int = 60):
    d = np.array(np.asarray(d, dtype=ctx.dtype), copy=True)
    n = d.shape[0]
    e_full = np.zeros(n, dtype=ctx.dtype)
    if n > 1:
        e_full[: n - 1] = np.asarray(e, dtype=ctx.dtype)[: n - 1]
    if Z is None:
        Z = np.eye(n, dtype=ctx.dtype)
    else:
        Z = np.array(np.asarray(Z, dtype=ctx.dtype), copy=True)
    if n == 0:
        return d, Z
    eps = ctx.dtype(ctx.machine_epsilon)
    eps_f = float(eps)
    one = ctx.dtype(1.0)
    two = ctx.dtype(2.0)

    for low in range(n):
        sweeps = 0
        while True:
            if not (np.all(np.isfinite(d)) and np.all(np.isfinite(e_full))):
                raise EigenConvergenceError("non-finite values during QL iteration")
            m = low
            while m < n - 1:
                dd = abs(float(d[m])) + abs(float(d[m + 1]))
                if abs(float(e_full[m])) <= eps_f * dd:
                    break
                m += 1
            if m == low:
                break
            sweeps += 1
            if sweeps > max_sweeps:
                raise EigenConvergenceError(
                    f"QL iteration did not deflate eigenvalue {low} within "
                    f"{max_sweeps} sweeps in {ctx.name}"
                )
            g = ctx.div(ctx.sub(d[low + 1], d[low]), ctx.mul(two, e_full[low]))
            r = ctx.hypot(g, one)
            denom = ctx.add(g, np.copysign(r, g))
            if float(denom) == 0.0 or not np.isfinite(denom):
                denom = np.copysign(ctx.dtype(max(float(eps), 1e-30)), g)
            g = ctx.add(ctx.sub(d[m], d[low]), ctx.div(e_full[low], denom))
            s = one
            c = one
            p = ctx.dtype(0.0)
            restart = False
            for i in range(m - 1, low - 1, -1):
                f = ctx.mul(s, e_full[i])
                b = ctx.mul(c, e_full[i])
                r = ctx.hypot(f, g)
                e_full[i + 1] = r
                if float(r) == 0.0:
                    d[i + 1] = ctx.sub(d[i + 1], p)
                    e_full[m] = ctx.dtype(0.0)
                    restart = True
                    break
                s = ctx.div(f, r)
                c = ctx.div(g, r)
                g = ctx.sub(d[i + 1], p)
                r = ctx.add(
                    ctx.mul(ctx.sub(d[i], g), s), ctx.mul(ctx.mul(two, c), b)
                )
                p = ctx.mul(s, r)
                d[i + 1] = ctx.add(g, p)
                g = ctx.sub(ctx.mul(c, r), b)
                zi = Z[:, i].copy()
                zi1 = Z[:, i + 1].copy()
                Z[:, i + 1] = ctx.add(ctx.mul(s, zi), ctx.mul(c, zi1))
                Z[:, i] = ctx.sub(ctx.mul(c, zi), ctx.mul(s, zi1))
            if restart:
                continue
            d[low] = ctx.sub(d[low], p)
            e_full[low] = g
            e_full[m] = ctx.dtype(0.0)
    return d, Z


def symmetric_eigen_explicit(ctx, A, max_sweeps: int = 60):
    A = np.asarray(A, dtype=ctx.dtype)
    if A.shape[0] == 0:
        return np.zeros(0, dtype=ctx.dtype), np.zeros((0, 0), dtype=ctx.dtype)
    if A.shape[0] == 1:
        return A[0, :1].copy(), np.ones((1, 1), dtype=ctx.dtype)
    sym = ctx.mul(ctx.dtype(0.5), ctx.add(A, A.T))
    d, e, Q = tridiagonalize_explicit(ctx, sym)
    return tridiagonal_eigen_explicit(ctx, d, e, Z=Q, max_sweeps=max_sweeps)


# --------------------------------------------------------------------- #
# Arnoldi expansion (explicit form)
# --------------------------------------------------------------------- #
def _orthogonalize_explicit(ctx, V_active, w):
    norm_before = ctx.norm2(w)
    h = ctx.gemv_t(V_active, w)
    w = ctx.sub(w, ctx.gemv(V_active, h))
    norm_after = ctx.norm2(w)
    if np.isfinite(norm_after) and float(norm_after) > _DGKS_ETA * float(norm_before):
        return w, h, norm_after, False
    h2 = ctx.gemv_t(V_active, w)
    w = ctx.sub(w, ctx.gemv(V_active, h2))
    h = ctx.add(h, h2)
    norm_final = ctx.norm2(w)
    breakdown = not np.isfinite(norm_final) or float(norm_final) <= _DGKS_ETA * float(
        norm_after
    ) or float(norm_final) == 0.0
    return w, h, norm_final, breakdown


def _random_orthonormal_explicit(ctx, V_active, rng):
    n = V_active.shape[0]
    for _ in range(3):
        candidate = ctx.asarray(rng.standard_normal(n))
        candidate, _, norm, breakdown = _orthogonalize_explicit(ctx, V_active, candidate)
        if not breakdown and np.isfinite(norm) and float(norm) > 0.0:
            return ctx.div(candidate, norm)
    return None


def arnoldi_expand_explicit(ctx, matrix, decomp, target_order, rng=None):
    n = matrix.shape[0]
    k = decomp.order
    target_order = min(target_order, n)
    if rng is None:
        rng = np.random.default_rng(0)
    if k >= target_order or decomp.invariant:
        return decomp, 0

    V = np.zeros((n, target_order), dtype=ctx.dtype)
    S = np.zeros((target_order, target_order), dtype=ctx.dtype)
    if k:
        V[:, :k] = decomp.V
        S[:k, :k] = decomp.S
        S[k, :k] = decomp.b
    b = np.zeros(target_order, dtype=ctx.dtype)
    v_next = decomp.residual
    matvecs = 0

    for j in range(k, target_order):
        if v_next is None or not np.all(np.isfinite(v_next)):
            raise ArnoldiBreakdown("non-finite Krylov vector")
        V[:, j] = v_next
        w = ctx.spmv(matrix, V[:, j])
        matvecs += 1
        if not np.all(np.isfinite(w)):
            raise ArnoldiBreakdown("matrix-vector product overflowed")
        w, h, beta, broke_down = _orthogonalize_explicit(ctx, V[:, : j + 1], w)
        if not np.all(np.isfinite(np.asarray(h, dtype=np.float64))):
            raise ArnoldiBreakdown("orthogonalisation coefficients overflowed")
        S[: j + 1, j] = h
        if not np.isfinite(beta):
            raise ArnoldiBreakdown("residual norm overflowed")
        if broke_down or float(beta) == 0.0:
            replacement = _random_orthonormal_explicit(ctx, V[:, : j + 1], rng)
            if replacement is None:
                return (
                    KrylovDecomposition(
                        V=V[:, : j + 1],
                        S=S[: j + 1, : j + 1],
                        b=np.zeros(j + 1, dtype=ctx.dtype),
                        residual=None,
                        invariant=True,
                    ),
                    matvecs,
                )
            v_next = replacement
            if j + 1 < target_order:
                S[j + 1, j] = 0.0
            else:
                b[:] = 0.0
            continue
        v_next = ctx.div(w, beta)
        if j + 1 < target_order:
            S[j + 1, j] = beta
        else:
            b[:] = 0.0
            b[j] = beta

    return (
        KrylovDecomposition(V=V, S=S, b=b, residual=v_next, invariant=False),
        matvecs,
    )


# --------------------------------------------------------------------- #
# Krylov-Schur driver (explicit form)
# --------------------------------------------------------------------- #
def _initial_vector_explicit(ctx, n, v0, seed):
    if v0 is not None:
        v = ctx.asarray(np.asarray(v0, dtype=np.float64))
    else:
        rng = np.random.default_rng(seed)
        v = ctx.asarray(rng.standard_normal(n))
    nrm = ctx.norm2(v)
    if not np.isfinite(nrm) or float(nrm) == 0.0:
        v = ctx.asarray(np.ones(n) / np.sqrt(n))
        nrm = ctx.norm2(v)
    return ctx.div(v, nrm)


def _ritz_decomposition_explicit(ctx, decomp):
    theta, Y = symmetric_eigen_explicit(ctx, decomp.S)
    b_ritz = ctx.gemv_t(Y, decomp.b)
    return theta, Y, b_ritz


def _count_converged_explicit(theta, b_ritz, order, nev, tol):
    converged = 0
    for idx in order[:nev]:
        lam = abs(float(theta[idx]))
        resid = abs(float(b_ritz[idx]))
        bound = tol * lam if lam > 0 else tol
        if resid <= bound:
            converged += 1
        else:
            break
    return converged


def partialschur_explicit(
    matrix,
    nev=6,
    which="LM",
    tol=1e-8,
    maxdim=None,
    restarts=100,
    ctx=None,
    v0=None,
    seed=0,
    eps_floor=True,
):
    """Explicit-context copy of :func:`repro.core.partialschur` (no history)."""
    from repro.arithmetic import get_context

    if ctx is None:
        ctx = get_context("float64")
    elif isinstance(ctx, str):
        ctx = get_context(ctx)
    n = matrix.shape[0]
    nev = min(nev, n)
    if maxdim is None:
        maxdim = default_maxdim(nev, n)
    maxdim = int(min(max(maxdim, nev + 2), n))
    solver_tol = effective_tolerance(tol, ctx, eps_floor)

    matrix = matrix.with_data(ctx.round(np.asarray(matrix.data, dtype=ctx.dtype)))

    v_start = _initial_vector_explicit(ctx, n, v0, seed)
    deflation_rng = np.random.default_rng([seed, 0x5EED])
    decomp = KrylovDecomposition(
        V=np.zeros((n, 0), dtype=ctx.dtype),
        S=np.zeros((0, 0), dtype=ctx.dtype),
        b=np.zeros(0, dtype=ctx.dtype),
        residual=v_start,
        invariant=False,
    )

    matvecs = 0
    restart_count = 0
    reason = "maxiter"
    theta = Y = b_ritz = None
    order = None

    try:
        while True:
            decomp, used = arnoldi_expand_explicit(
                ctx, matrix, decomp, maxdim, rng=deflation_rng
            )
            matvecs += used
            theta, Y, b_ritz = _ritz_decomposition_explicit(ctx, decomp)
            if not np.all(np.isfinite(np.asarray(theta, dtype=np.float64))):
                raise ArnoldiBreakdown("non-finite Ritz values")
            order = select_order(np.asarray(theta, dtype=np.float64), which)
            nconv = _count_converged_explicit(
                theta, b_ritz, order, min(nev, decomp.order), solver_tol
            )
            if decomp.invariant:
                reason = "invariant"
                break
            if nconv >= min(nev, decomp.order):
                reason = "converged"
                break
            if restart_count >= restarts:
                reason = "maxiter"
                break
            restart_count += 1
            keep = min(
                decomp.order - 1,
                max(nev + (decomp.order - nev) // 2, nev + 1),
            )
            sel = order[:keep]
            Ysel = np.asarray(Y)[:, sel]
            V_new = ctx.gemm(decomp.V, Ysel)
            S_new = np.zeros((keep, keep), dtype=ctx.dtype)
            S_new[np.arange(keep), np.arange(keep)] = np.asarray(theta)[sel]
            b_new = np.asarray(b_ritz)[sel].astype(ctx.dtype)
            decomp = KrylovDecomposition(
                V=V_new, S=S_new, b=b_new, residual=decomp.residual, invariant=False
            )
    except (ArnoldiBreakdown, EigenConvergenceError):
        return PartialSchurResult(
            eigenvalues=np.zeros(0, dtype=ctx.dtype),
            eigenvectors=np.zeros((n, 0), dtype=ctx.dtype),
            residuals=np.zeros(0),
            converged=False,
            nconverged=0,
            restarts=restart_count,
            matvecs=matvecs,
            reason="breakdown",
            which=which,
            tolerance=tol,
            format_name=ctx.name,
            history=None,
        )

    nret = min(nev, decomp.order)
    sel = order[:nret]
    theta_np = np.asarray(theta)
    lam = theta_np[sel]
    Ysel = np.asarray(Y)[:, sel]
    X = ctx.gemm(decomp.V, Ysel)
    residuals = np.abs(np.asarray(b_ritz, dtype=np.float64))[sel]
    if decomp.invariant:
        residuals = np.zeros(nret)
    nconv = (
        _count_converged_explicit(theta, b_ritz, order, nret, solver_tol)
        if not decomp.invariant
        else nret
    )
    converged = reason in ("converged", "invariant") and nconv >= nret

    return PartialSchurResult(
        eigenvalues=lam,
        eigenvectors=X,
        residuals=residuals,
        converged=converged,
        nconverged=nconv,
        restarts=restart_count,
        matvecs=matvecs,
        reason=reason,
        which=which,
        tolerance=tol,
        format_name=ctx.name,
        history=None,
    )
