"""Tests of the COO/CSR sparse-matrix substrate."""

import numpy as np
import pytest

from repro.sparse import COOMatrix, CSRMatrix
from tests.conftest import random_symmetric_csr


class TestCOO:
    def test_shape_inference(self):
        coo = COOMatrix([0, 2], [1, 3], [1.0, 2.0])
        assert coo.shape == (3, 4)

    def test_explicit_shape_validation(self):
        with pytest.raises(ValueError):
            COOMatrix([0, 5], [0, 0], [1.0, 1.0], shape=(3, 3))
        with pytest.raises(ValueError):
            COOMatrix([-1], [0], [1.0], shape=(3, 3))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            COOMatrix([0, 1], [0], [1.0, 2.0])

    def test_todense_sums_duplicates(self):
        coo = COOMatrix([0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0], (2, 2))
        dense = coo.todense()
        assert dense[0, 0] == 3.0 and dense[1, 1] == 5.0

    def test_transpose(self):
        coo = COOMatrix([0, 1], [2, 0], [1.0, 2.0], (2, 3))
        t = coo.T
        assert t.shape == (3, 2)
        assert t.todense()[2, 0] == 1.0

    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((6, 6))
        dense[np.abs(dense) < 0.7] = 0.0
        coo = COOMatrix.from_dense(dense)
        assert np.array_equal(coo.todense(), dense)


class TestCSRConstruction:
    def test_from_coo_sums_duplicates_and_drops_zeros(self):
        coo = COOMatrix([0, 0, 1, 1], [1, 1, 0, 0], [1.0, 2.0, 3.0, -3.0], (2, 2))
        csr = coo.tocsr()
        assert csr.nnz == 1
        assert csr.todense()[0, 1] == 3.0

    def test_empty_matrix(self):
        csr = COOMatrix([], [], [], (4, 4)).tocsr()
        assert csr.nnz == 0
        assert np.array_equal(csr.matvec(np.ones(4)), np.zeros(4))

    def test_validation(self):
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.array([0, 1]), np.array([0, 1]), (2, 2))
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.array([0, 5]), np.array([0, 1, 2]), (2, 2))
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.array([0, 1]), np.array([0, 2, 1]), (2, 2))

    def test_identity(self):
        eye = CSRMatrix.identity(5, value=2.0)
        assert np.array_equal(eye.todense(), 2.0 * np.eye(5))

    def test_from_dense(self, rng):
        dense = rng.standard_normal((8, 8))
        dense[np.abs(dense) < 0.8] = 0.0
        assert np.array_equal(CSRMatrix.from_dense(dense).todense(), dense)

    def test_roundtrip_with_scipy(self):
        A = random_symmetric_csr(30, density=0.1, seed=0)
        S = A.toscipy()
        assert np.array_equal(S.toarray(), A.todense())


class TestCSROperations:
    def test_matvec_matches_scipy(self, rng):
        A = random_symmetric_csr(50, density=0.1, seed=1)
        x = rng.standard_normal(50)
        assert np.allclose(A.matvec(x), A.toscipy() @ x)
        assert np.allclose(A @ x, A.toscipy() @ x)

    def test_diagonal(self):
        A = CSRMatrix.from_dense(np.diag([1.0, 2.0, 3.0]) + np.eye(3, k=1))
        assert np.array_equal(A.diagonal(), [1.0, 2.0, 3.0])

    def test_row_sums(self):
        dense = np.array([[1.0, 2.0], [0.0, -3.0]])
        assert np.array_equal(CSRMatrix.from_dense(dense).row_sums(), [3.0, -3.0])

    def test_transpose(self, rng):
        dense = rng.standard_normal((5, 7))
        dense[np.abs(dense) < 0.5] = 0.0
        A = CSRMatrix.from_dense(dense)
        assert np.array_equal(A.T.todense(), dense.T)

    def test_scale(self):
        A = CSRMatrix.identity(3)
        assert np.array_equal(A.scale(4.0).todense(), 4.0 * np.eye(3))

    def test_with_data_pattern_check(self):
        A = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            A.with_data(np.ones(5))
        B = A.with_data(np.array([7.0, 8.0, 9.0]))
        assert np.array_equal(B.diagonal(), [7.0, 8.0, 9.0])
        # original untouched
        assert np.array_equal(A.diagonal(), [1.0, 1.0, 1.0])

    def test_is_symmetric(self):
        sym = random_symmetric_csr(20, density=0.2, seed=2)
        assert sym.is_symmetric(tol=1e-14)
        asym = CSRMatrix.from_dense(np.triu(np.ones((4, 4))))
        assert not asym.is_symmetric()

    def test_max_min_abs(self):
        A = CSRMatrix.from_dense(np.array([[0.0, -5.0], [0.25, 0.0]]))
        assert A.max_abs() == 5.0
        assert A.min_abs_nonzero() == 0.25
        empty = COOMatrix([], [], [], (2, 2)).tocsr()
        assert empty.max_abs() == 0.0
        assert empty.min_abs_nonzero() == 0.0

    def test_tocoo_roundtrip(self):
        A = random_symmetric_csr(15, density=0.2, seed=3)
        assert np.array_equal(A.tocoo().tocsr().todense(), A.todense())
