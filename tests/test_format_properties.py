"""Hypothesis property tests shared by every number format."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arithmetic import available_formats, get_format

#: formats cheap enough for exhaustive-table oracles
TABLE_FORMATS = ["E4M3", "E5M2", "float16", "bfloat16", "posit8", "posit16", "takum8", "takum16"]
WIDE_FORMATS = ["float32", "float64", "posit32", "posit64", "takum32", "takum64"]

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e60, max_value=1e60
)


@pytest.mark.parametrize("name", sorted(available_formats()))
class TestUniversalProperties:
    @settings(max_examples=60, deadline=None)
    @given(x=finite_floats)
    def test_round_is_idempotent(self, name, x):
        fmt = get_format(name)
        once = fmt.round_scalar(x)
        if np.isfinite(once):
            assert fmt.round_scalar(once) == once

    @settings(max_examples=60, deadline=None)
    @given(x=finite_floats)
    def test_sign_symmetry(self, name, x):
        fmt = get_format(name)
        plus = fmt.round_scalar(x)
        minus = fmt.round_scalar(-x)
        if np.isfinite(plus) and np.isfinite(minus):
            assert minus == -plus

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_monotonicity(self, name, data):
        fmt = get_format(name)
        x = data.draw(finite_floats)
        y = data.draw(finite_floats)
        lo, hi = (x, y) if x <= y else (y, x)
        rlo, rhi = fmt.round_scalar(lo), fmt.round_scalar(hi)
        if np.isfinite(rlo) and np.isfinite(rhi):
            assert rlo <= rhi

    @settings(max_examples=40, deadline=None)
    @given(x=finite_floats)
    def test_zero_only_from_zero_for_tapered(self, name, x):
        fmt = get_format(name)
        if not fmt.saturating:
            pytest.skip("only tapered formats never round to zero")
        if x != 0.0:
            assert fmt.round_scalar(x) != 0.0

    def test_zero_rounds_to_zero(self, name):
        fmt = get_format(name)
        assert fmt.round_scalar(0.0) == 0.0

    def test_nan_rounds_to_nan(self, name):
        fmt = get_format(name)
        assert np.isnan(fmt.round_scalar(float("nan")))


@pytest.mark.parametrize("name", TABLE_FORMATS)
class TestNearestAgainstExhaustiveTable:
    @settings(max_examples=80, deadline=None)
    @given(x=st.floats(allow_nan=False, allow_infinity=False, min_value=-1e20, max_value=1e20))
    def test_round_returns_a_nearest_value(self, name, x):
        fmt = get_format(name)
        table = _magnitude_table(fmt)
        r = fmt.round_scalar(x)
        if not np.isfinite(r):
            # only possible for IEEE-style overflow (E4M3 -> NaN, E5M2/float16 -> inf)
            assert abs(x) > fmt.max_value
            return
        if fmt.saturating and x != 0.0:
            # tapered formats never round a non-zero value to zero, so the
            # oracle must exclude zero from the candidate set
            candidates = table[table > 0]
        else:
            candidates = table
        best = np.min(np.abs(candidates - abs(x)))
        achieved = abs(abs(r) - abs(x))
        assert achieved <= best * (1 + 1e-12) + 1e-300


_TABLE_CACHE = {}


def _magnitude_table(fmt):
    if fmt.name not in _TABLE_CACHE:
        mags = [0.0]
        for code in range(1, 1 << (fmt.bits - 1)):
            v = float(fmt.decode_code(code))
            if np.isfinite(v) and v > 0:
                mags.append(v)
        _TABLE_CACHE[fmt.name] = np.asarray(sorted(mags))
    return _TABLE_CACHE[fmt.name]


@pytest.mark.parametrize("name", WIDE_FORMATS)
class TestWideFormatConsistency:
    @settings(max_examples=60, deadline=None)
    @given(x=finite_floats)
    def test_encode_decode_matches_round(self, name, x):
        fmt = get_format(name)
        r = fmt.round_array(np.asarray([x], dtype=fmt.work_dtype))
        if not np.isfinite(r[0]):
            return
        back = fmt.decode(fmt.encode(r))
        assert back[0] == r[0]

    @settings(max_examples=60, deadline=None)
    @given(x=finite_floats)
    def test_error_within_local_spacing(self, name, x):
        fmt = get_format(name)
        r = float(fmt.round_array(np.asarray([x], dtype=fmt.work_dtype))[0])
        if not np.isfinite(r) or abs(x) > float(fmt.max_value) or abs(x) < float(fmt.min_positive):
            return
        # the rounding error is bounded by the local spacing; in the extreme
        # regime regions of tapered formats consecutive values can be a
        # factor 16 apart (es = 2), so the worst-case error approaches the
        # magnitude itself — use that generous bound
        budget = abs(x) * 0.95 + 1e-300
        assert abs(r - x) <= budget
