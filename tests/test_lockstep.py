"""Differential tests of the lockstep format-axis engine.

The contract under test is absolute: for every registered format, a row of
:func:`repro.core.lockstep.batched_partialschur` must be **bit-identical**
to running :func:`repro.core.krylov_schur.partialschur` sequentially with
the same format — eigenvalues, eigenvectors, residuals, convergence
metadata, and rounded-op tallies alike.  The batched engine is a pure
re-scheduling of the sequential one; any observable difference is a bug.

Also covered: the retirement-mask edge cases (rows leaving the batch in
every order, all at once, via deflation), mixed-width batches spanning
work-dtype lanes, and the :class:`~repro.arithmetic.batched.BatchedFArray`
surface (operator parity with FArray, context-mismatch detection, the
``row()`` hand-off).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arithmetic import (
    BatchSpec,
    BatchedContext,
    BatchedFArray,
    ContextMismatchError,
    ContextSpec,
    available_formats,
    get_context,
)
from repro.core.krylov_schur import partialschur
from repro.core.lockstep import batched_partialschur
from repro.sparse import CSRMatrix
from tests.conftest import random_symmetric_csr

#: formats spanning 8-, 16-, and 64-bit storage (all registered in the seed)
MIXED_WIDTH = ["E4M3", "takum8", "float16", "bfloat16", "posit16", "posit64"]


def _assert_rows_match(batched, sequential, label=""):
    """Every observable field of a batched row equals the sequential run."""
    assert np.array_equal(batched.eigenvalues, sequential.eigenvalues), label
    assert np.array_equal(batched.eigenvectors, sequential.eigenvectors), label
    assert np.array_equal(batched.residuals, sequential.residuals), label
    assert batched.converged == sequential.converged, label
    assert batched.nconverged == sequential.nconverged, label
    assert batched.restarts == sequential.restarts, label
    assert batched.matvecs == sequential.matvecs, label
    assert batched.reason == sequential.reason, label


def _check_batch(matrix, formats, **kwargs):
    """Run a batch and its sequential twins; assert bit-identity per row."""
    results = batched_partialschur(matrix, formats, **kwargs)
    tol = kwargs.pop("tol", 1e-8)
    tols = tol if isinstance(tol, list) else [tol] * len(formats)
    for fmt, row_tol, batched in zip(formats, tols, results):
        sequential = partialschur(matrix, ctx=fmt, tol=row_tol, **kwargs)
        _assert_rows_match(batched, sequential, label=fmt)
    return results


class TestBatchedDifferential:
    """batched_partialschur row-for-row against the sequential engine."""

    def test_every_registered_format_bit_identical(self):
        matrix = random_symmetric_csr(26, density=0.12, seed=3)
        formats = list(available_formats()) + ["reference"]
        _check_batch(matrix, formats, nev=3, tol=1e-8, restarts=4, seed=1)

    def test_mixed_width_batch(self):
        """8/16/64-bit formats in one batch: several work-dtype lanes."""
        matrix = random_symmetric_csr(22, density=0.15, seed=9)
        spec = BatchSpec(MIXED_WIDTH)
        assert len(spec.lanes()) > 1  # the point of the test
        _check_batch(matrix, MIXED_WIDTH, nev=3, tol=1e-6, restarts=3, seed=2)

    def test_single_row_batch_equals_partialschur(self):
        matrix = random_symmetric_csr(30, density=0.1, seed=5)
        _check_batch(matrix, ["float64"], nev=4, tol=1e-10, restarts=6, seed=0)

    def test_result_order_follows_spec_order(self):
        matrix = random_symmetric_csr(20, density=0.15, seed=4)
        formats = ["float64", "bfloat16", "takum8"]
        results = batched_partialschur(matrix, formats, nev=2, restarts=2, seed=1)
        flipped = batched_partialschur(matrix, formats[::-1], nev=2, restarts=2, seed=1)
        for a, b in zip(results, flipped[::-1]):
            _assert_rows_match(a, b)


class TestRetirementMasks:
    """Rows must be able to leave the lockstep sweep in any order."""

    def test_first_row_retires_first(self):
        """A loose-tolerance row converges while the tight row keeps going."""
        matrix = random_symmetric_csr(24, density=0.12, seed=7)
        results = _check_batch(
            matrix,
            ["float64", "float64"],
            nev=3,
            tol=[1e-1, 1e-12],
            restarts=8,
            seed=1,
        )
        loose, tight = results
        assert loose.restarts <= tight.restarts

    def test_last_row_retires_first(self):
        matrix = random_symmetric_csr(24, density=0.12, seed=7)
        results = _check_batch(
            matrix,
            ["float64", "float64"],
            nev=3,
            tol=[1e-12, 1e-1],
            restarts=8,
            seed=1,
        )
        tight, loose = results
        assert loose.restarts <= tight.restarts

    def test_all_rows_retire_same_round(self):
        """``restarts=0``: every row must leave after the first sweep."""
        matrix = random_symmetric_csr(28, density=0.1, seed=11)
        results = _check_batch(
            matrix,
            ["float64", "float32", "bfloat16"],
            nev=4,
            tol=1e-14,
            restarts=0,
            seed=3,
        )
        assert all(r.restarts == 0 for r in results)

    def test_converged_on_final_restart_is_converged(self):
        """Convergence is checked before the restart budget (sequential
        precedence); a row finishing on its last allowed expansion must not
        be misreported as ``maxiter``."""
        matrix = random_symmetric_csr(24, density=0.12, seed=7)
        # find a budget where the sequential run converges exactly at the cap
        sequential = partialschur(matrix, ctx="float64", nev=3, tol=1e-12, seed=1)
        budget = sequential.restarts
        _check_batch(matrix, ["float64", "takum8"], nev=3, tol=1e-12, restarts=budget, seed=1)

    def test_invariant_deflation(self):
        """Degenerate spectra exhaust the Krylov space; deflation and the
        ``invariant`` retirement must track the sequential engine."""
        matrix = CSRMatrix.from_dense(np.diag(np.array([3.0, 3.0, 2.0, 2.0, 1.0] * 4)))
        results = _check_batch(matrix, ["float64", "float32", "takum8"], nev=6, seed=2)
        assert any(r.reason == "invariant" for r in results)

    def test_per_row_tol_list_rejects_wrong_length(self):
        matrix = random_symmetric_csr(20, density=0.15, seed=4)
        with pytest.raises(ValueError):
            batched_partialschur(matrix, ["float64", "float32"], tol=[1e-8])


class TestBatchedOpCounts:
    """Per-row rounded-op tallies must equal the sequential run's."""

    def test_op_count_parity(self):
        matrix = random_symmetric_csr(20, density=0.15, seed=8)
        formats = ["float64", "posit16"]
        contexts = [
            get_context(ContextSpec(format=f, count_ops=True)) for f in formats
        ]
        batched_partialschur(matrix, BatchSpec(contexts), nev=3, restarts=2, seed=1)
        for fmt, ctx in zip(formats, contexts):
            sequential_ctx = get_context(ContextSpec(format=fmt, count_ops=True))
            partialschur(matrix, ctx=sequential_ctx, nev=3, restarts=2, seed=1)
            assert ctx.op_count == sequential_ctx.op_count, fmt


class TestBatchedFArraySurface:
    """Operator parity, context identity, and the sequential hand-off."""

    @staticmethod
    def _chain(add, value_a, value_b):
        """A representative rounded chain; ``add`` flavours the operands."""
        s = (value_a + value_b) * value_a
        t = s - value_b / (value_b + add)
        return abs(-t)

    def test_operator_chain_matches_farray_per_lane(self):
        rng = np.random.default_rng(21)
        spec = BatchSpec(list(available_formats()))
        for contexts, indices in spec.lanes():
            bctx = BatchedContext(contexts)
            raw = rng.standard_normal((len(contexts), 12)) * 2.0
            data = bctx.round(np.array(raw, dtype=bctx.dtype), bctx.all_rows)
            other = bctx.round(
                np.abs(np.array(rng.standard_normal((len(contexts), 12)), dtype=bctx.dtype))
                + bctx.dtype(0.5),
                bctx.all_rows,
            )
            batched = self._chain(1.5, BatchedFArray(bctx, data.copy()), BatchedFArray(bctx, other.copy()))
            for i, ctx in enumerate(contexts):
                sequential = self._chain(1.5, ctx.wrap(data[i].copy()), ctx.wrap(other[i].copy()))
                assert np.array_equal(batched.data[i], sequential.data), (
                    f"lane dtype {np.dtype(bctx.dtype).name}, row {indices[i]} "
                    f"({ctx.name})"
                )

    def test_row_handoff_returns_bound_farray(self):
        bctx = BatchedContext.from_formats(["float64", "float64"])
        stacked = BatchedFArray(bctx, np.arange(6, dtype=np.float64).reshape(2, 3))
        row = stacked.row(1)
        assert row.ctx is bctx.rows[1]
        assert np.array_equal(row.data, stacked.data[1])

    def test_context_mismatch_raises(self):
        a = BatchedFArray(BatchedContext.from_formats(["float64"]), np.ones((1, 4)))
        b = BatchedFArray(BatchedContext.from_formats(["float64"]), np.ones((1, 4)))
        with pytest.raises(ContextMismatchError):
            a + b  # same formats, different context objects: still a leak

    def test_row_map_length_mismatch_raises(self):
        bctx = BatchedContext.from_formats(["float64", "float64"])
        with pytest.raises(ValueError):
            BatchedFArray(bctx, np.ones((3, 4)))

    def test_mixed_lane_context_rejected(self):
        with pytest.raises(ValueError):
            BatchedContext([get_context("float64"), get_context("float32")])

    def test_mixed_accumulation_rejected(self):
        with pytest.raises(ValueError):
            BatchSpec(
                [
                    ContextSpec(format="float64", accumulation="pairwise"),
                    ContextSpec(format="float64", accumulation="sequential"),
                ]
            )
