"""Tests of linear takum arithmetic."""

import math

import numpy as np
import pytest

from repro.arithmetic import TAKUM8, TAKUM16, TAKUM32, TAKUM64, TakumFormat


class TestTakumLayout:
    def test_dynamic_range_is_width_independent(self):
        # the characteristic spans [-255, 254] for every width
        for fmt in (TAKUM16, TAKUM32, TAKUM64):
            assert 2.0**253 < fmt.max_value < 2.0**255
            assert 2.0**-256 < fmt.min_positive < 2.0**-254

    def test_wider_dynamic_range_than_posit(self):
        from repro.arithmetic import POSIT16, POSIT32

        assert TAKUM16.max_value > POSIT16.max_value
        assert TAKUM32.max_value > POSIT32.max_value

    def test_precision_near_one(self):
        # around 1.0 the mantissa has n - 5 bits
        assert TAKUM16.machine_epsilon == 2.0**-11
        assert TAKUM32.machine_epsilon == 2.0**-27
        assert TAKUM8.machine_epsilon == 2.0**-3

    def test_work_dtype(self):
        assert TAKUM64.work_dtype == np.longdouble
        assert TAKUM32.work_dtype == np.float64

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            TakumFormat(4)


class TestTakumDecode:
    def test_special_codes(self):
        assert TAKUM16.decode_code(0) == 0.0
        assert math.isnan(float(TAKUM16.decode_code(1 << 15)))

    def test_one(self):
        # +1: S=0 D=1 R=000 C=() M=0  -> bit pattern 0b01_000_...
        assert TAKUM16.decode_code(0b0100000000000000) == 1.0
        assert TAKUM8.decode_code(0b01000000) == 1.0

    def test_minus_one(self):
        # -1: S=1 D=1 R=000 M=0
        assert TAKUM16.decode_code(0b1100000000000000) == -1.0

    def test_two_and_half(self):
        # c=1: D=1, R=001, C='1'? for c=1: r=1, C = c - (2^1 - 1) = 0
        val = TAKUM16.decode_code(0b0100100000000000)
        assert val == 2.0
        # c=-1: D=0, r=0, value 2^-1
        val = TAKUM16.decode_code(0b0011100000000000)
        assert val == 0.5

    def test_monotonic_in_code_for_positive(self):
        for fmt in (TAKUM8, TAKUM16):
            codes = np.arange(1, 1 << (fmt.bits - 1))
            values = np.array([float(fmt.decode_code(int(c))) for c in codes])
            assert np.all(np.diff(values) > 0)

    def test_monotonic_for_negative_codes(self):
        # negative takums: as the code (two's-complement integer) increases
        # towards -1, the value increases towards 0
        fmt = TAKUM8
        codes = np.arange((1 << 7) + 1, 1 << 8)
        values = np.array([float(fmt.decode_code(int(c))) for c in codes])
        assert np.all(values < 0)
        assert np.all(np.diff(values) > 0)

    def test_magnitude_sets_are_symmetric(self):
        fmt = TAKUM8
        pos = sorted(float(fmt.decode_code(c)) for c in range(1, 1 << 7))
        neg = sorted(-float(fmt.decode_code(c)) for c in range((1 << 7) + 1, 1 << 8))
        assert np.allclose(pos, neg, rtol=0, atol=0)

    def test_narrow_formats_decode_by_zero_padding(self):
        # takum8 code 1: r=7 but only 3 tail bits -> characteristic padded
        assert float(TAKUM8.decode_code(1)) == 2.0 ** (-255 + 16)


class TestTakumRounding:
    def test_round_preserves_representable(self):
        rng = np.random.default_rng(0)
        codes = rng.integers(1, 1 << 15, 200)
        values = np.array([float(TAKUM16.decode_code(int(c))) for c in codes])
        assert np.array_equal(TAKUM16.round_array(values), values)

    def test_round_is_nearest_takum16(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(300) * 10.0 ** rng.integers(-12, 12, 300)
        rounded = TAKUM16.round_array(x)
        table = np.array([float(TAKUM16.decode_code(c)) for c in range(1, 1 << 15)])
        full = np.concatenate([-table, [0.0], table])
        for xi, ri in zip(x, rounded):
            best = full[np.argmin(np.abs(full - xi))]
            assert abs(ri - xi) <= abs(best - xi) * (1 + 1e-15) + 1e-300

    def test_analytic_path_is_idempotent(self):
        rng = np.random.default_rng(2)
        for fmt in (TAKUM32, TAKUM64):
            x = (rng.standard_normal(300) * 10.0 ** rng.integers(-70, 70, 300)).astype(
                fmt.work_dtype
            )
            once = fmt.round_array(x)
            assert np.array_equal(fmt.round_array(once), once)

    def test_analytic_and_table_agree_for_takum16(self):
        # build an analytic-rounding takum16 by pretending it is wide
        rng = np.random.default_rng(3)
        x = rng.standard_normal(200)
        table_rounded = TAKUM16.round_array(x)
        # consistency: encode/decode round trip of the table result
        back = TAKUM16.decode(TAKUM16.encode(table_rounded))
        assert np.array_equal(table_rounded, back)

    def test_saturation(self):
        assert TAKUM16.round_scalar(1e100) == TAKUM16.max_value
        assert TAKUM16.round_scalar(-1e100) == -TAKUM16.max_value
        assert TAKUM16.round_scalar(1e-100) == TAKUM16.min_positive
        assert float(TAKUM64.round_scalar(float(np.ldexp(1.0, 300)))) == pytest.approx(
            float(TAKUM64.max_value)
        )

    def test_never_rounds_nonzero_to_zero(self):
        out = TAKUM32.round_array(np.array([1e-300, -1e-300]))
        assert out[0] == TAKUM32.min_positive
        assert out[1] == -TAKUM32.min_positive

    def test_nan_and_inf_map_to_nar(self):
        out = TAKUM16.round_array(np.array([np.nan, np.inf, -np.inf]))
        assert np.isnan(out).all()

    def test_negative_symmetry(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(200) * 10.0 ** rng.integers(-40, 40, 200)
        for fmt in (TAKUM8, TAKUM16, TAKUM32):
            assert np.array_equal(fmt.round_array(-x), -fmt.round_array(x))

    def test_tapered_precision(self):
        # relative spacing grows with the magnitude's distance from 1
        near_one = TAKUM32.round_scalar(1.0 + 2.0**-27) - 1.0
        far = TAKUM32.round_scalar(2.0**100 * (1.0 + 2.0**-27)) - 2.0**100
        assert near_one > 0  # representable at full precision near 1
        assert far == 0 or far / 2.0**100 > near_one  # coarser far away


class TestTakumEncode:
    @pytest.mark.parametrize("fmt", [TAKUM8, TAKUM16, TAKUM32, TAKUM64])
    def test_encode_decode_roundtrip(self, fmt):
        rng = np.random.default_rng(5)
        x = (rng.standard_normal(150) * 10.0 ** rng.integers(-20, 20, 150)).astype(
            fmt.work_dtype
        )
        rounded = fmt.round_array(x)
        back = fmt.decode(fmt.encode(rounded))
        assert np.array_equal(rounded, back)

    def test_encode_specials(self):
        codes = TAKUM16.encode(np.array([0.0, float("nan"), 1.0, -1.0]))
        assert codes[0] == 0
        assert codes[1] == 1 << 15
        assert codes[2] == 0b0100000000000000
        assert codes[3] == 0b1100000000000000
